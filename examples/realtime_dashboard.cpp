// Real-time analytics over changing data — the paper's motivating HTAP
// scenario: a stream of order events (high-throughput writes with
// updates and deduplication) powering a live dashboard (complex
// aggregations over the same table), with sub-second end-to-end
// freshness. A read-only workspace isolates the heaviest analytics from
// the operational workload.
//
//   ./build/examples/realtime_dashboard

#include <cstdio>
#include <thread>

#include "blob/blob_store.h"
#include "common/env.h"
#include "common/rng.h"
#include "engine/database.h"
#include "query/plan.h"

using namespace s2;

#define CHECK_OK(expr)                                        \
  do {                                                        \
    ::s2::Status _s = (expr);                                 \
    if (!_s.ok()) {                                           \
      fprintf(stderr, "FAILED: %s\n", _s.ToString().c_str()); \
      return 1;                                               \
    }                                                         \
  } while (false)

int main() {
  std::string dir = *MakeTempDir("s2-dashboard");
  MemBlobStore blob;  // stands in for S3

  DatabaseOptions options;
  options.dir = dir;
  options.blob = &blob;
  options.num_partitions = 2;
  options.background_uploads = true;
  auto db = Database::Open(options);
  CHECK_OK(db.status());

  // Order events: status transitions arrive as upserts keyed by order id.
  TableOptions events;
  events.schema = Schema({{"order_id", DataType::kInt64},
                          {"status", DataType::kString},
                          {"region", DataType::kString},
                          {"amount", DataType::kDouble}});
  events.unique_key = {0};
  events.indexes = {{0}, {1}};
  events.segment_rows = 4096;
  events.flush_threshold = 4096;
  CHECK_OK((*db)->CreateTable("orders", events, {0}));

  // --- Ingest: high-throughput upserts with deduplication --------------
  // ON DUPLICATE KEY UPDATE keeps exactly one row per order while events
  // stream in out of order — uniqueness enforcement on a columnstore is
  // one of the unified table's signature features (Section 4.1.2).
  Rng rng(11);
  const char* statuses[] = {"created", "paid", "shipped", "delivered"};
  const char* regions[] = {"emea", "amer", "apac"};
  int events_ingested = 0;
  for (int wave = 0; wave < 20; ++wave) {
    std::vector<Row> batch;
    for (int i = 0; i < 500; ++i) {
      int64_t order = static_cast<int64_t>(rng.Uniform(5000));
      batch.push_back({Value(order), Value(statuses[rng.Uniform(4)]),
                       Value(regions[order % 3]),
                       Value(10.0 + rng.NextDouble() * 490.0)});
    }
    CHECK_OK((*db)->Insert("orders", batch, DupPolicy::kUpdate));
    events_ingested += 500;
  }
  printf("ingested %d events (deduplicated into at most 5000 live orders)\n",
         events_ingested);

  // --- Live dashboard query: runs against the same table ---------------
  auto dashboard = [&](int workspace) -> int {
    auto result = (*db)->Query(
        [] {
          auto scan = std::make_unique<ScanOp>(
              "orders", std::vector<int>{1, 3});
          std::vector<AggSpec> aggs;
          aggs.push_back({AggKind::kCount, nullptr});
          aggs.push_back({AggKind::kSum, Col(1)});
          return std::make_unique<AggregateOp>(
              std::move(scan), std::vector<ExprPtr>{Col(0)}, std::move(aggs));
        },
        workspace);
    if (!result.ok()) {
      fprintf(stderr, "dashboard: %s\n", result.status().ToString().c_str());
      return 1;
    }
    // Gather: merge the per-partition partials.
    std::map<std::string, std::pair<int64_t, double>> merged;
    for (const Row& row : *result) {
      auto& slot = merged[row[0].as_string()];
      slot.first += row[1].as_int();
      slot.second += row[2].is_null() ? 0 : row[2].as_double();
    }
    printf("  %-10s %8s %14s\n", "status", "orders", "revenue");
    for (auto& [status, slot] : merged) {
      printf("  %-10s %8lld %14.2f\n", status.c_str(),
             static_cast<long long>(slot.first), slot.second);
    }
    return 0;
  };

  printf("\ndashboard on the primary workspace (reads the freshest data):\n");
  if (dashboard(-1) != 0) return 1;

  // --- Isolate analytics on a read-only workspace ----------------------
  // The workspace provisions from blob storage and streams the log tail;
  // it never participates in commit acknowledgment, so the operational
  // side keeps its latency (Section 3.2).
  CHECK_OK((*db)->Checkpoint());
  auto workspace = (*db)->CreateWorkspace();
  CHECK_OK(workspace.status());
  printf("\nread-only workspace %d provisioned from blob storage\n",
         *workspace);

  // Keep ingesting while the workspace serves the dashboard.
  std::vector<Row> more;
  for (int i = 0; i < 500; ++i) {
    int64_t order = 100000 + i;
    more.push_back({Value(order), Value("created"), Value("emea"),
                    Value(42.0)});
  }
  CHECK_OK((*db)->Insert("orders", more));
  // Give the async apply a moment (paper: < 1 ms replication lag).
  for (int spin = 0; spin < 1000; ++spin) {
    if ((*db)->cluster()->WorkspaceLagBytes(*workspace) == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  printf("replication lag after new writes: %llu bytes\n\n",
         static_cast<unsigned long long>(
             (*db)->cluster()->WorkspaceLagBytes(*workspace)));
  printf("dashboard on the isolated workspace:\n");
  if (dashboard(*workspace) != 0) return 1;

  printf("\nblob store now holds %llu objects (uploaded asynchronously; "
         "zero blob writes on any commit path)\n",
         static_cast<unsigned long long>(blob.stats().puts.load()));

  (void)RemoveDirRecursive(dir);
  printf("realtime_dashboard complete.\n");
  return 0;
}
