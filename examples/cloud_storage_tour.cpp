// A tour of separation of storage and compute (paper Section 3):
//   * commits never wait for blob storage,
//   * cold data is evicted locally and read back through the blob store,
//   * blob history gives point-in-time restore without explicit backups,
//   * HA replicas ack commits and take over on failover.
//
//   ./build/examples/cloud_storage_tour

#include <cstdio>

#include "blob/blob_store.h"
#include "cluster/cluster.h"
#include "common/env.h"
#include "query/plan.h"

using namespace s2;

#define CHECK_OK(expr)                                        \
  do {                                                        \
    ::s2::Status _s = (expr);                                 \
    if (!_s.ok()) {                                           \
      fprintf(stderr, "FAILED: %s\n", _s.ToString().c_str()); \
      return 1;                                               \
    }                                                         \
  } while (false)

int main() {
  std::string dir = *MakeTempDir("s2-tour");
  // A directory-backed blob store so the uploaded objects are visible on
  // disk; swap in any BlobStore implementation (S3, ...).
  LocalDirBlobStore blob(dir + "/blobstore");

  ClusterOptions options;
  options.dir = dir + "/cluster";
  options.num_partitions = 1;
  options.num_nodes = 2;
  options.ha_replicas = 1;
  options.blob = &blob;
  options.cache_bytes = 64 * 1024;  // tiny "local disk" to force cold reads
  Cluster cluster(options);
  CHECK_OK(cluster.Start());

  TableOptions sensors;
  sensors.schema = Schema({{"ts", DataType::kInt64},
                           {"sensor", DataType::kInt64},
                           {"reading", DataType::kDouble}});
  sensors.unique_key = {0, 1};
  sensors.indexes = {{1}};
  sensors.sort_key = {0};
  sensors.segment_rows = 2048;
  sensors.flush_threshold = 2048;
  CHECK_OK(cluster.CreateTable("sensors", sensors, {1}));

  // --- 1. Commits are local; uploads are asynchronous ------------------
  uint64_t puts_before = blob.stats().puts.load();
  for (int64_t t = 0; t < 10000; t += 500) {
    std::vector<Row> rows;
    for (int64_t i = t; i < t + 500; ++i) {
      rows.push_back({Value(i), Value(i % 16), Value(20.0 + (i % 100) * 0.1)});
    }
    CHECK_OK(cluster.InsertRows("sensors", rows));
  }
  printf("1. committed 10000 rows; blob PUTs during commits: %llu "
         "(commit path never touches the blob store)\n",
         static_cast<unsigned long long>(blob.stats().puts.load() -
                                         puts_before));

  CHECK_OK(cluster.UploadAllToBlob());
  auto keys = blob.List("part0/");
  printf("   after async upload: %zu objects in the blob store "
         "(data files, log chunks, snapshot)\n",
         keys.ok() ? keys->size() : 0);

  // --- 2. Cold data leaves the local disk once uploaded ----------------
  // The 64KB "local disk" can't hold the whole dataset; uploaded cold
  // files are evicted and will be re-fetched from blob storage on demand.
  Partition* partition = cluster.partition(0);
  partition->files()->EvictCold();
  {
    QueryContext ctx;
    ctx.partition = partition;
    auto h = partition->Begin();
    ctx.txn = h.id;
    ctx.read_ts = h.read_ts;
    auto scan = std::make_unique<ScanOp>("sensors", std::vector<int>{0});
    auto rows = RunPlan(scan.get(), &ctx);
    partition->EndRead(h.id);
    CHECK_OK(rows.status());
    printf("2. evicted %llu cold files beyond the 64KB local budget; "
           "scans still return %zu rows (hot working set + read-through)\n",
           static_cast<unsigned long long>(
               partition->files()->stats().files_evicted.load()),
           rows->size());
  }

  // --- 3. Point-in-time restore from blob history ----------------------
  uint64_t gets_before = blob.stats().gets.load();
  Lsn checkpoint = partition->log()->durable_lsn();
  std::vector<Row> late;
  for (int64_t i = 20000; i < 20100; ++i) {
    late.push_back({Value(i), Value(int64_t{3}), Value(0.0)});
  }
  CHECK_OK(cluster.InsertRows("sensors", late));
  CHECK_OK(cluster.UploadAllToBlob());
  auto restored = cluster.RestorePartitionToLsn(0, checkpoint, dir + "/pitr");
  CHECK_OK(restored.status());
  auto table = (*restored)->GetTable("sensors");
  printf("3. PITR to the pre-write checkpoint: restored copy holds %llu "
         "rows (live copy holds %llu), rebuilt with %llu blob GETs — no "
         "explicit backup was ever taken\n",
         static_cast<unsigned long long>((*table)->ApproxRowCount()),
         static_cast<unsigned long long>(
             (*cluster.partition(0)->GetTable("sensors"))->ApproxRowCount()),
         static_cast<unsigned long long>(blob.stats().gets.load() -
                                         gets_before));

  // --- 4. Failover to the HA replica ------------------------------------
  int master_node = cluster.MasterNode(0);
  cluster.KillNode(master_node);
  auto promoted = cluster.RunFailureDetector();
  CHECK_OK(promoted.status());
  printf("4. killed node %d; failure detector promoted %d replica(s); ",
         master_node, *promoted);
  CHECK_OK(cluster.InsertRows(
      "sensors", {{Value(int64_t{99999}), Value(int64_t{1}), Value(1.0)}}));
  printf("cluster accepts writes again (new master on node %d)\n",
         cluster.MasterNode(0));

  (void)RemoveDirRecursive(dir);
  printf("\ncloud_storage_tour complete.\n");
  return 0;
}
