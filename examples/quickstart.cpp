// Quickstart: open a database, create a unified table, write, query,
// update, and recover after a restart.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "common/env.h"
#include "engine/database.h"
#include "query/plan.h"

using namespace s2;

#define CHECK_OK(expr)                                            \
  do {                                                            \
    ::s2::Status _s = (expr);                                     \
    if (!_s.ok()) {                                               \
      fprintf(stderr, "FAILED: %s\n", _s.ToString().c_str());     \
      return 1;                                                   \
    }                                                             \
  } while (false)

int main() {
  std::string dir = *MakeTempDir("s2-quickstart");
  printf("database directory: %s\n\n", dir.c_str());

  // --- Open a single-node database -------------------------------------
  DatabaseOptions options;
  options.dir = dir;
  auto db = Database::Open(options);
  if (!db.ok()) {
    fprintf(stderr, "open: %s\n", db.status().ToString().c_str());
    return 1;
  }

  // --- Create a unified table ------------------------------------------
  // One table type serves both point lookups (unique key + secondary
  // index) and analytics (columnstore segments with a sort key).
  TableOptions users;
  users.schema = Schema({{"id", DataType::kInt64},
                         {"email", DataType::kString},
                         {"country", DataType::kString},
                         {"balance", DataType::kDouble}});
  users.unique_key = {0};
  users.indexes = {{0}, {2}};  // by id and by country
  users.sort_key = {0};
  users.segment_rows = 1024;
  users.flush_threshold = 1024;
  CHECK_OK((*db)->CreateTable("users", users, /*shard_key=*/{0}));

  // --- Insert rows (autocommit batches) --------------------------------
  for (int64_t batch = 0; batch < 5; ++batch) {
    std::vector<Row> rows;
    for (int64_t i = batch * 1000; i < (batch + 1) * 1000; ++i) {
      rows.push_back({Value(i), Value("user" + std::to_string(i) + "@x.com"),
                      Value(i % 3 == 0 ? "DE" : "US"), Value(i * 1.5)});
    }
    CHECK_OK((*db)->Insert("users", rows));
  }
  printf("inserted 5000 users\n");

  // --- Analytics: vectorized scan + aggregation ------------------------
  // SELECT country, count(*), sum(balance) FROM users GROUP BY country
  auto result = (*db)->Query([] {
    auto scan = std::make_unique<ScanOp>("users", std::vector<int>{2, 3});
    std::vector<AggSpec> aggs;
    aggs.push_back({AggKind::kCount, nullptr});
    aggs.push_back({AggKind::kSum, Col(1)});
    return std::make_unique<AggregateOp>(
        std::move(scan), std::vector<ExprPtr>{Col(0)}, std::move(aggs));
  });
  CHECK_OK(result.status());
  printf("\ncountry   users   total balance\n");
  for (const Row& row : *result) {
    printf("%-9s %6lld %15.1f\n", row[0].as_string().c_str(),
           static_cast<long long>(row[1].as_int()), row[2].as_double());
  }

  // --- OLTP: point lookup through the two-level secondary index --------
  Cluster* cluster = (*db)->cluster();
  Partition* partition = cluster->partition(0);
  UnifiedTable* table = *partition->GetTable("users");
  auto h = partition->Begin();
  CHECK_OK(table->LookupByIndex(
      h.id, h.read_ts, {0}, {Value(int64_t{4242})},
      [](const Row& row, const RowLocation& loc) {
        printf("\npoint lookup id=4242 -> email=%s (%s)\n",
               row[1].as_string().c_str(),
               loc.in_rowstore ? "in rowstore" : "in columnstore segment");
        return false;
      }));
  partition->EndRead(h.id);

  // --- OLTP: transactional update and delete ---------------------------
  {
    auto txn = (*db)->Begin();
    int p = *cluster->PartitionForRow(
        "users", {Value(int64_t{4242}), Value(""), Value(""), Value(0.0)});
    auto ht = txn.On(p);
    CHECK_OK(txn.table(p, "users")->UpdateByKey(
        ht.id, ht.read_ts, {Value(int64_t{4242})},
        {Value(int64_t{4242}), Value("renamed@x.com"), Value("FR"),
         Value(999.0)}));
    CHECK_OK(txn.table(p, "users")->DeleteByKey(ht.id, ht.read_ts,
                                                {Value(int64_t{1})}));
    CHECK_OK(txn.Commit());
    printf("updated user 4242, deleted user 1 (one transaction)\n");
  }

  // --- Restart: recovery from the write-ahead log ----------------------
  db->reset();
  db = Database::Open(options);
  CHECK_OK(db.status());
  auto count = (*db)->Query([] {
    auto scan = std::make_unique<ScanOp>("users", std::vector<int>{0});
    std::vector<AggSpec> aggs;
    aggs.push_back({AggKind::kCount, nullptr});
    return std::make_unique<AggregateOp>(std::move(scan),
                                         std::vector<ExprPtr>{},
                                         std::move(aggs));
  });
  CHECK_OK(count.status());
  printf("\nafter restart + log replay: %lld users (expected 4999)\n",
         static_cast<long long>((*count)[0][0].as_int()));

  (void)RemoveDirRecursive(dir);
  printf("\nquickstart complete.\n");
  return 0;
}
