// Continuous monitoring and the flight recorder:
//   * a database runs with the monitor sampling every metric into ring
//     time-series and evaluating watchdog rules,
//   * queries run under tracing and the slow-query profiler,
//   * one call dumps the whole debugging bundle — metrics, metric history,
//     watchdog states, event journal, Chrome trace, system tables.
//
//   ./build/examples/flight_recorder_demo [bundle-dir]
//
// Load <bundle-dir>/trace.json (or engine_trace.json) in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing to see the spans.

#include <cstdio>
#include <string>
#include <vector>

#include "blob/blob_store.h"
#include "common/env.h"
#include "common/metrics.h"
#include "engine/database.h"
#include "engine/system_tables.h"
#include "query/plan.h"

using namespace s2;

#define CHECK_OK(expr)                                        \
  do {                                                        \
    ::s2::Status _s = (expr);                                 \
    if (!_s.ok()) {                                           \
      fprintf(stderr, "FAILED: %s\n", _s.ToString().c_str()); \
      return 1;                                               \
    }                                                         \
  } while (false)

int main(int argc, char** argv) {
  std::string bundle_dir = argc > 1 ? argv[1] : "flight-recorder";
  std::string dir = *MakeTempDir("s2-flight");
  MemBlobStore blob;

  DatabaseOptions options;
  options.dir = dir + "/db";
  options.blob = &blob;
  options.num_partitions = 2;
  options.enable_monitor = true;
  options.slow_query_ns = 1;  // profile and retain every query
  auto db = Database::Open(options);
  if (!db.ok()) {
    fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    return 1;
  }

  // Record executor/scan spans into the trace ring while we work.
  TraceBuffer::Global()->set_enabled(true);

  TableOptions events;
  events.schema = Schema({{"id", DataType::kInt64},
                          {"kind", DataType::kString},
                          {"value", DataType::kDouble}});
  events.unique_key = {0};
  events.segment_rows = 512;
  events.flush_threshold = 512;
  CHECK_OK((*db)->CreateTable("events", events, {0}));

  std::vector<Row> rows;
  for (int64_t i = 0; i < 5000; ++i) {
    rows.push_back(
        {Value(i), Value("kind" + std::to_string(i % 7)), Value(i * 0.25)});
  }
  CHECK_OK((*db)->Insert("events", rows));
  CHECK_OK((*db)->Maintain());

  // A few monitored query rounds: each tick snapshots every metric into
  // its ring series, so the bundle's history has real shape.
  for (int round = 0; round < 4; ++round) {
    auto result = (*db)->Query(
        [] { return std::make_unique<ScanOp>("events", std::vector<int>{0}); });
    if (!result.ok()) {
      fprintf(stderr, "query failed: %s\n",
              result.status().ToString().c_str());
      return 1;
    }
    printf("round %d: scanned %zu rows\n", round, result->size());
    (*db)->monitor()->TickOnce();
  }

  printf("\nwatchdogs:\n%s\n",
         SystemTables((*db)->cluster(), (*db)->monitor()).Watchdogs()
             .ToText()
             .c_str());

  CHECK_OK((*db)->DumpFlightRecorder(bundle_dir));
  printf("flight-recorder bundle written to %s/\n", bundle_dir.c_str());
  printf("load %s/engine_trace.json in Perfetto or chrome://tracing\n",
         bundle_dir.c_str());

  (void)RemoveDirRecursive(dir);
  return 0;
}
