file(REMOVE_RECURSE
  "CMakeFiles/blob_test.dir/blob_test.cc.o"
  "CMakeFiles/blob_test.dir/blob_test.cc.o.d"
  "blob_test"
  "blob_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blob_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
