# Empty dependencies file for blob_test.
# This may be replaced when dependencies are built.
