file(REMOVE_RECURSE
  "CMakeFiles/columnstore_test.dir/columnstore_test.cc.o"
  "CMakeFiles/columnstore_test.dir/columnstore_test.cc.o.d"
  "columnstore_test"
  "columnstore_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/columnstore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
