# Empty compiler generated dependencies file for columnstore_test.
# This may be replaced when dependencies are built.
