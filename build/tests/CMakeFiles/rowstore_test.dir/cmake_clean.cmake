file(REMOVE_RECURSE
  "CMakeFiles/rowstore_test.dir/rowstore_test.cc.o"
  "CMakeFiles/rowstore_test.dir/rowstore_test.cc.o.d"
  "rowstore_test"
  "rowstore_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rowstore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
