# Empty compiler generated dependencies file for rowstore_test.
# This may be replaced when dependencies are built.
