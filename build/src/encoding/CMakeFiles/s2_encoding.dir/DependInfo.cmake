
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/encoding/bitpack.cc" "src/encoding/CMakeFiles/s2_encoding.dir/bitpack.cc.o" "gcc" "src/encoding/CMakeFiles/s2_encoding.dir/bitpack.cc.o.d"
  "/root/repo/src/encoding/column_vector.cc" "src/encoding/CMakeFiles/s2_encoding.dir/column_vector.cc.o" "gcc" "src/encoding/CMakeFiles/s2_encoding.dir/column_vector.cc.o.d"
  "/root/repo/src/encoding/encoding.cc" "src/encoding/CMakeFiles/s2_encoding.dir/encoding.cc.o" "gcc" "src/encoding/CMakeFiles/s2_encoding.dir/encoding.cc.o.d"
  "/root/repo/src/encoding/lz.cc" "src/encoding/CMakeFiles/s2_encoding.dir/lz.cc.o" "gcc" "src/encoding/CMakeFiles/s2_encoding.dir/lz.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/s2_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
