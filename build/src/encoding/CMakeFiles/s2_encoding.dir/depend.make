# Empty dependencies file for s2_encoding.
# This may be replaced when dependencies are built.
