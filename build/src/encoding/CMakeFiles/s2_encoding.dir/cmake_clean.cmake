file(REMOVE_RECURSE
  "CMakeFiles/s2_encoding.dir/bitpack.cc.o"
  "CMakeFiles/s2_encoding.dir/bitpack.cc.o.d"
  "CMakeFiles/s2_encoding.dir/column_vector.cc.o"
  "CMakeFiles/s2_encoding.dir/column_vector.cc.o.d"
  "CMakeFiles/s2_encoding.dir/encoding.cc.o"
  "CMakeFiles/s2_encoding.dir/encoding.cc.o.d"
  "CMakeFiles/s2_encoding.dir/lz.cc.o"
  "CMakeFiles/s2_encoding.dir/lz.cc.o.d"
  "libs2_encoding.a"
  "libs2_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
