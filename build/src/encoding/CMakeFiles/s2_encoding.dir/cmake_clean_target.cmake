file(REMOVE_RECURSE
  "libs2_encoding.a"
)
