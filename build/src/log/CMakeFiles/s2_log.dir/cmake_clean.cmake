file(REMOVE_RECURSE
  "CMakeFiles/s2_log.dir/log_record.cc.o"
  "CMakeFiles/s2_log.dir/log_record.cc.o.d"
  "CMakeFiles/s2_log.dir/partition_log.cc.o"
  "CMakeFiles/s2_log.dir/partition_log.cc.o.d"
  "CMakeFiles/s2_log.dir/snapshot.cc.o"
  "CMakeFiles/s2_log.dir/snapshot.cc.o.d"
  "libs2_log.a"
  "libs2_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
