
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/log/log_record.cc" "src/log/CMakeFiles/s2_log.dir/log_record.cc.o" "gcc" "src/log/CMakeFiles/s2_log.dir/log_record.cc.o.d"
  "/root/repo/src/log/partition_log.cc" "src/log/CMakeFiles/s2_log.dir/partition_log.cc.o" "gcc" "src/log/CMakeFiles/s2_log.dir/partition_log.cc.o.d"
  "/root/repo/src/log/snapshot.cc" "src/log/CMakeFiles/s2_log.dir/snapshot.cc.o" "gcc" "src/log/CMakeFiles/s2_log.dir/snapshot.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/s2_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
