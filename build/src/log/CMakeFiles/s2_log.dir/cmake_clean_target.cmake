file(REMOVE_RECURSE
  "libs2_log.a"
)
