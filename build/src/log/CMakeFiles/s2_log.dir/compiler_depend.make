# Empty compiler generated dependencies file for s2_log.
# This may be replaced when dependencies are built.
