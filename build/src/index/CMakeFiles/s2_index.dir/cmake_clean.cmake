file(REMOVE_RECURSE
  "CMakeFiles/s2_index.dir/global_index.cc.o"
  "CMakeFiles/s2_index.dir/global_index.cc.o.d"
  "CMakeFiles/s2_index.dir/inverted_index.cc.o"
  "CMakeFiles/s2_index.dir/inverted_index.cc.o.d"
  "CMakeFiles/s2_index.dir/key_lock_manager.cc.o"
  "CMakeFiles/s2_index.dir/key_lock_manager.cc.o.d"
  "CMakeFiles/s2_index.dir/postings.cc.o"
  "CMakeFiles/s2_index.dir/postings.cc.o.d"
  "libs2_index.a"
  "libs2_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
