# Empty dependencies file for s2_index.
# This may be replaced when dependencies are built.
