file(REMOVE_RECURSE
  "libs2_index.a"
)
