
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/global_index.cc" "src/index/CMakeFiles/s2_index.dir/global_index.cc.o" "gcc" "src/index/CMakeFiles/s2_index.dir/global_index.cc.o.d"
  "/root/repo/src/index/inverted_index.cc" "src/index/CMakeFiles/s2_index.dir/inverted_index.cc.o" "gcc" "src/index/CMakeFiles/s2_index.dir/inverted_index.cc.o.d"
  "/root/repo/src/index/key_lock_manager.cc" "src/index/CMakeFiles/s2_index.dir/key_lock_manager.cc.o" "gcc" "src/index/CMakeFiles/s2_index.dir/key_lock_manager.cc.o.d"
  "/root/repo/src/index/postings.cc" "src/index/CMakeFiles/s2_index.dir/postings.cc.o" "gcc" "src/index/CMakeFiles/s2_index.dir/postings.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/s2_common.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/s2_encoding.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
