# Empty compiler generated dependencies file for s2_txn.
# This may be replaced when dependencies are built.
