file(REMOVE_RECURSE
  "libs2_txn.a"
)
