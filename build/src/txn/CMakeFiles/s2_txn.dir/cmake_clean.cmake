file(REMOVE_RECURSE
  "CMakeFiles/s2_txn.dir/txn_manager.cc.o"
  "CMakeFiles/s2_txn.dir/txn_manager.cc.o.d"
  "libs2_txn.a"
  "libs2_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
