file(REMOVE_RECURSE
  "CMakeFiles/s2_common.dir/bitvector.cc.o"
  "CMakeFiles/s2_common.dir/bitvector.cc.o.d"
  "CMakeFiles/s2_common.dir/coding.cc.o"
  "CMakeFiles/s2_common.dir/coding.cc.o.d"
  "CMakeFiles/s2_common.dir/crc32.cc.o"
  "CMakeFiles/s2_common.dir/crc32.cc.o.d"
  "CMakeFiles/s2_common.dir/env.cc.o"
  "CMakeFiles/s2_common.dir/env.cc.o.d"
  "CMakeFiles/s2_common.dir/hash.cc.o"
  "CMakeFiles/s2_common.dir/hash.cc.o.d"
  "CMakeFiles/s2_common.dir/status.cc.o"
  "CMakeFiles/s2_common.dir/status.cc.o.d"
  "CMakeFiles/s2_common.dir/threadpool.cc.o"
  "CMakeFiles/s2_common.dir/threadpool.cc.o.d"
  "CMakeFiles/s2_common.dir/types.cc.o"
  "CMakeFiles/s2_common.dir/types.cc.o.d"
  "libs2_common.a"
  "libs2_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
