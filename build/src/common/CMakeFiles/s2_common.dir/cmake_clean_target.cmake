file(REMOVE_RECURSE
  "libs2_common.a"
)
