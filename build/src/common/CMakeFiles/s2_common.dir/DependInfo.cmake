
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/bitvector.cc" "src/common/CMakeFiles/s2_common.dir/bitvector.cc.o" "gcc" "src/common/CMakeFiles/s2_common.dir/bitvector.cc.o.d"
  "/root/repo/src/common/coding.cc" "src/common/CMakeFiles/s2_common.dir/coding.cc.o" "gcc" "src/common/CMakeFiles/s2_common.dir/coding.cc.o.d"
  "/root/repo/src/common/crc32.cc" "src/common/CMakeFiles/s2_common.dir/crc32.cc.o" "gcc" "src/common/CMakeFiles/s2_common.dir/crc32.cc.o.d"
  "/root/repo/src/common/env.cc" "src/common/CMakeFiles/s2_common.dir/env.cc.o" "gcc" "src/common/CMakeFiles/s2_common.dir/env.cc.o.d"
  "/root/repo/src/common/hash.cc" "src/common/CMakeFiles/s2_common.dir/hash.cc.o" "gcc" "src/common/CMakeFiles/s2_common.dir/hash.cc.o.d"
  "/root/repo/src/common/status.cc" "src/common/CMakeFiles/s2_common.dir/status.cc.o" "gcc" "src/common/CMakeFiles/s2_common.dir/status.cc.o.d"
  "/root/repo/src/common/threadpool.cc" "src/common/CMakeFiles/s2_common.dir/threadpool.cc.o" "gcc" "src/common/CMakeFiles/s2_common.dir/threadpool.cc.o.d"
  "/root/repo/src/common/types.cc" "src/common/CMakeFiles/s2_common.dir/types.cc.o" "gcc" "src/common/CMakeFiles/s2_common.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
