# Empty compiler generated dependencies file for s2_common.
# This may be replaced when dependencies are built.
