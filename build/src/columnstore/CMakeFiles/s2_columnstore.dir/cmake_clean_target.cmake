file(REMOVE_RECURSE
  "libs2_columnstore.a"
)
