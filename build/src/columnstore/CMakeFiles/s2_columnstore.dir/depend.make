# Empty dependencies file for s2_columnstore.
# This may be replaced when dependencies are built.
