file(REMOVE_RECURSE
  "CMakeFiles/s2_columnstore.dir/merger.cc.o"
  "CMakeFiles/s2_columnstore.dir/merger.cc.o.d"
  "CMakeFiles/s2_columnstore.dir/segment.cc.o"
  "CMakeFiles/s2_columnstore.dir/segment.cc.o.d"
  "CMakeFiles/s2_columnstore.dir/segment_meta.cc.o"
  "CMakeFiles/s2_columnstore.dir/segment_meta.cc.o.d"
  "libs2_columnstore.a"
  "libs2_columnstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2_columnstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
