# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("encoding")
subdirs("log")
subdirs("blob")
subdirs("rowstore")
subdirs("columnstore")
subdirs("index")
subdirs("txn")
subdirs("storage")
subdirs("exec")
subdirs("query")
subdirs("cluster")
subdirs("engine")
