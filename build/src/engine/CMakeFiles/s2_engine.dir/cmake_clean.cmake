file(REMOVE_RECURSE
  "CMakeFiles/s2_engine.dir/database.cc.o"
  "CMakeFiles/s2_engine.dir/database.cc.o.d"
  "libs2_engine.a"
  "libs2_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
