file(REMOVE_RECURSE
  "libs2_engine.a"
)
