# Empty dependencies file for s2_engine.
# This may be replaced when dependencies are built.
