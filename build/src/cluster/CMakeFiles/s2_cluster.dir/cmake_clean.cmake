file(REMOVE_RECURSE
  "CMakeFiles/s2_cluster.dir/cluster.cc.o"
  "CMakeFiles/s2_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/s2_cluster.dir/replica.cc.o"
  "CMakeFiles/s2_cluster.dir/replica.cc.o.d"
  "libs2_cluster.a"
  "libs2_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
