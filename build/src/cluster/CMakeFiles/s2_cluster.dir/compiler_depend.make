# Empty compiler generated dependencies file for s2_cluster.
# This may be replaced when dependencies are built.
