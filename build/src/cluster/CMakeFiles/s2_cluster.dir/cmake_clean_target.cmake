file(REMOVE_RECURSE
  "libs2_cluster.a"
)
