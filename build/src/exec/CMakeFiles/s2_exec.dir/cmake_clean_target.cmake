file(REMOVE_RECURSE
  "libs2_exec.a"
)
