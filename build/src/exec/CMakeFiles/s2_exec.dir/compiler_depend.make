# Empty compiler generated dependencies file for s2_exec.
# This may be replaced when dependencies are built.
