file(REMOVE_RECURSE
  "CMakeFiles/s2_exec.dir/filter.cc.o"
  "CMakeFiles/s2_exec.dir/filter.cc.o.d"
  "CMakeFiles/s2_exec.dir/table_scanner.cc.o"
  "CMakeFiles/s2_exec.dir/table_scanner.cc.o.d"
  "libs2_exec.a"
  "libs2_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
