file(REMOVE_RECURSE
  "CMakeFiles/s2_rowstore.dir/rowstore_table.cc.o"
  "CMakeFiles/s2_rowstore.dir/rowstore_table.cc.o.d"
  "CMakeFiles/s2_rowstore.dir/skiplist.cc.o"
  "CMakeFiles/s2_rowstore.dir/skiplist.cc.o.d"
  "libs2_rowstore.a"
  "libs2_rowstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2_rowstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
