file(REMOVE_RECURSE
  "libs2_rowstore.a"
)
