
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rowstore/rowstore_table.cc" "src/rowstore/CMakeFiles/s2_rowstore.dir/rowstore_table.cc.o" "gcc" "src/rowstore/CMakeFiles/s2_rowstore.dir/rowstore_table.cc.o.d"
  "/root/repo/src/rowstore/skiplist.cc" "src/rowstore/CMakeFiles/s2_rowstore.dir/skiplist.cc.o" "gcc" "src/rowstore/CMakeFiles/s2_rowstore.dir/skiplist.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/s2_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
