# Empty dependencies file for s2_rowstore.
# This may be replaced when dependencies are built.
