file(REMOVE_RECURSE
  "CMakeFiles/s2_storage.dir/partition.cc.o"
  "CMakeFiles/s2_storage.dir/partition.cc.o.d"
  "CMakeFiles/s2_storage.dir/table_options.cc.o"
  "CMakeFiles/s2_storage.dir/table_options.cc.o.d"
  "CMakeFiles/s2_storage.dir/unified_table.cc.o"
  "CMakeFiles/s2_storage.dir/unified_table.cc.o.d"
  "libs2_storage.a"
  "libs2_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
