# Empty dependencies file for s2_storage.
# This may be replaced when dependencies are built.
