file(REMOVE_RECURSE
  "libs2_storage.a"
)
