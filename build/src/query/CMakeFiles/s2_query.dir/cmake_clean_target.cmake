file(REMOVE_RECURSE
  "libs2_query.a"
)
