file(REMOVE_RECURSE
  "CMakeFiles/s2_query.dir/expr.cc.o"
  "CMakeFiles/s2_query.dir/expr.cc.o.d"
  "CMakeFiles/s2_query.dir/plan.cc.o"
  "CMakeFiles/s2_query.dir/plan.cc.o.d"
  "libs2_query.a"
  "libs2_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
