# Empty compiler generated dependencies file for s2_query.
# This may be replaced when dependencies are built.
