file(REMOVE_RECURSE
  "CMakeFiles/s2_blob.dir/blob_store.cc.o"
  "CMakeFiles/s2_blob.dir/blob_store.cc.o.d"
  "CMakeFiles/s2_blob.dir/data_file_store.cc.o"
  "CMakeFiles/s2_blob.dir/data_file_store.cc.o.d"
  "libs2_blob.a"
  "libs2_blob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2_blob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
