# Empty dependencies file for s2_blob.
# This may be replaced when dependencies are built.
