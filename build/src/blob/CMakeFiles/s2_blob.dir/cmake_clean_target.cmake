file(REMOVE_RECURSE
  "libs2_blob.a"
)
