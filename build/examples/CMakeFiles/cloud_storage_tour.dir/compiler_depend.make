# Empty compiler generated dependencies file for cloud_storage_tour.
# This may be replaced when dependencies are built.
