file(REMOVE_RECURSE
  "CMakeFiles/cloud_storage_tour.dir/cloud_storage_tour.cpp.o"
  "CMakeFiles/cloud_storage_tour.dir/cloud_storage_tour.cpp.o.d"
  "cloud_storage_tour"
  "cloud_storage_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_storage_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
