# Empty compiler generated dependencies file for bench_ablation_encoded.
# This may be replaced when dependencies are built.
