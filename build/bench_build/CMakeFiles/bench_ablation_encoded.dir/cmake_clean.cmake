file(REMOVE_RECURSE
  "../bench/bench_ablation_encoded"
  "../bench/bench_ablation_encoded.pdb"
  "CMakeFiles/bench_ablation_encoded.dir/bench_ablation_encoded.cc.o"
  "CMakeFiles/bench_ablation_encoded.dir/bench_ablation_encoded.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_encoded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
