# Empty dependencies file for bench_ablation_seek.
# This may be replaced when dependencies are built.
