file(REMOVE_RECURSE
  "../bench/bench_ablation_seek"
  "../bench/bench_ablation_seek.pdb"
  "CMakeFiles/bench_ablation_seek.dir/bench_ablation_seek.cc.o"
  "CMakeFiles/bench_ablation_seek.dir/bench_ablation_seek.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_seek.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
