file(REMOVE_RECURSE
  "../bench/bench_fig5_summary"
  "../bench/bench_fig5_summary.pdb"
  "CMakeFiles/bench_fig5_summary.dir/bench_fig5_summary.cc.o"
  "CMakeFiles/bench_fig5_summary.dir/bench_fig5_summary.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
