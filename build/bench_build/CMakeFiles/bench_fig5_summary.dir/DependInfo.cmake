
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig5_summary.cc" "bench_build/CMakeFiles/bench_fig5_summary.dir/bench_fig5_summary.cc.o" "gcc" "bench_build/CMakeFiles/bench_fig5_summary.dir/bench_fig5_summary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench_build/workloads/CMakeFiles/s2_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/s2_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/s2_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/s2_query.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/s2_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/s2_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/s2_index.dir/DependInfo.cmake"
  "/root/repo/build/src/blob/CMakeFiles/s2_blob.dir/DependInfo.cmake"
  "/root/repo/build/src/columnstore/CMakeFiles/s2_columnstore.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/s2_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/log/CMakeFiles/s2_log.dir/DependInfo.cmake"
  "/root/repo/build/src/rowstore/CMakeFiles/s2_rowstore.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/s2_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/s2_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
