# Empty dependencies file for bench_fig5_summary.
# This may be replaced when dependencies are built.
