file(REMOVE_RECURSE
  "../bench/bench_ablation_adaptive"
  "../bench/bench_ablation_adaptive.pdb"
  "CMakeFiles/bench_ablation_adaptive.dir/bench_ablation_adaptive.cc.o"
  "CMakeFiles/bench_ablation_adaptive.dir/bench_ablation_adaptive.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
