file(REMOVE_RECURSE
  "../bench/bench_fig4_tpch_queries"
  "../bench/bench_fig4_tpch_queries.pdb"
  "CMakeFiles/bench_fig4_tpch_queries.dir/bench_fig4_tpch_queries.cc.o"
  "CMakeFiles/bench_fig4_tpch_queries.dir/bench_fig4_tpch_queries.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_tpch_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
