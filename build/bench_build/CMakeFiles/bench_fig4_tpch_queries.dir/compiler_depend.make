# Empty compiler generated dependencies file for bench_fig4_tpch_queries.
# This may be replaced when dependencies are built.
