# Empty compiler generated dependencies file for bench_ablation_deletes.
# This may be replaced when dependencies are built.
