file(REMOVE_RECURSE
  "../bench/bench_ablation_deletes"
  "../bench/bench_ablation_deletes.pdb"
  "CMakeFiles/bench_ablation_deletes.dir/bench_ablation_deletes.cc.o"
  "CMakeFiles/bench_ablation_deletes.dir/bench_ablation_deletes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_deletes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
