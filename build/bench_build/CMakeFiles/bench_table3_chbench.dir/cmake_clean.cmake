file(REMOVE_RECURSE
  "../bench/bench_table3_chbench"
  "../bench/bench_table3_chbench.pdb"
  "CMakeFiles/bench_table3_chbench.dir/bench_table3_chbench.cc.o"
  "CMakeFiles/bench_table3_chbench.dir/bench_table3_chbench.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_chbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
