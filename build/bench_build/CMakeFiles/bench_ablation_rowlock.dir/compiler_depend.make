# Empty compiler generated dependencies file for bench_ablation_rowlock.
# This may be replaced when dependencies are built.
