file(REMOVE_RECURSE
  "../bench/bench_ablation_rowlock"
  "../bench/bench_ablation_rowlock.pdb"
  "CMakeFiles/bench_ablation_rowlock.dir/bench_ablation_rowlock.cc.o"
  "CMakeFiles/bench_ablation_rowlock.dir/bench_ablation_rowlock.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rowlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
