# Empty dependencies file for bench_table2_tpch.
# This may be replaced when dependencies are built.
