file(REMOVE_RECURSE
  "../bench/bench_table2_tpch"
  "../bench/bench_table2_tpch.pdb"
  "CMakeFiles/bench_table2_tpch.dir/bench_table2_tpch.cc.o"
  "CMakeFiles/bench_table2_tpch.dir/bench_table2_tpch.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
