# Empty dependencies file for bench_ablation_commit_path.
# This may be replaced when dependencies are built.
