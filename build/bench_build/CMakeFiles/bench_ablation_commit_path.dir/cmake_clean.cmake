file(REMOVE_RECURSE
  "../bench/bench_ablation_commit_path"
  "../bench/bench_ablation_commit_path.pdb"
  "CMakeFiles/bench_ablation_commit_path.dir/bench_ablation_commit_path.cc.o"
  "CMakeFiles/bench_ablation_commit_path.dir/bench_ablation_commit_path.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_commit_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
