# Empty dependencies file for bench_table1_tpcc.
# This may be replaced when dependencies are built.
