file(REMOVE_RECURSE
  "../bench/bench_table1_tpcc"
  "../bench/bench_table1_tpcc.pdb"
  "CMakeFiles/bench_table1_tpcc.dir/bench_table1_tpcc.cc.o"
  "CMakeFiles/bench_table1_tpcc.dir/bench_table1_tpcc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_tpcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
