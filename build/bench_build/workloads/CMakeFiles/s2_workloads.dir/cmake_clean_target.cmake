file(REMOVE_RECURSE
  "libs2_workloads.a"
)
