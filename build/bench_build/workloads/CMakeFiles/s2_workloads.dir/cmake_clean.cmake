file(REMOVE_RECURSE
  "CMakeFiles/s2_workloads.dir/chbench.cc.o"
  "CMakeFiles/s2_workloads.dir/chbench.cc.o.d"
  "CMakeFiles/s2_workloads.dir/tpcc.cc.o"
  "CMakeFiles/s2_workloads.dir/tpcc.cc.o.d"
  "CMakeFiles/s2_workloads.dir/tpch.cc.o"
  "CMakeFiles/s2_workloads.dir/tpch.cc.o.d"
  "CMakeFiles/s2_workloads.dir/tpch_queries.cc.o"
  "CMakeFiles/s2_workloads.dir/tpch_queries.cc.o.d"
  "libs2_workloads.a"
  "libs2_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
