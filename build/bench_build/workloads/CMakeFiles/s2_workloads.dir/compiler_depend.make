# Empty compiler generated dependencies file for s2_workloads.
# This may be replaced when dependencies are built.
